// srclint: allow(R002): slices are length-checked immediately before each fixed-width decode
//! The write-ahead log store: append, rotate, checkpoint, recover.
//!
//! One [`WalStore`] manages one directory. Appends are serialised through
//! an internal mutex that also assigns LSNs; the rule that makes
//! checkpoints consistent is the **barrier**: every mutator holds
//! [`WalStore::barrier`] for *reading* across its entire
//! log-record-then-apply critical section, and the checkpointer holds it
//! for *writing* only while it reads the pin LSN, rotates the live
//! segment, and pins the in-memory state. Any op with an LSN at or below
//! the pin LSN is therefore fully applied in the pinned state; any op
//! above it lands in the fresh segment and replays over the snapshot.

use std::fs::{self, File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, SystemTime};

use parking_lot::{tracking, Mutex, RwLock};

use crate::enc::{crc32, Decoder, Encoder};
use crate::error::{Result, WalError};

const LOG_MAGIC: &[u8; 8] = b"CROSWAL1";
const SNAP_MAGIC: &[u8; 8] = b"CROSNAP1";
const SEGMENT_HEADER_LEN: u64 = 16;
/// Bytes of framing per record before the payload: len + crc + lsn + chan.
const RECORD_OVERHEAD: u32 = 9;
/// Upper bound on a single record body — anything larger is corruption,
/// not a real record.
const MAX_RECORD_LEN: u32 = 1 << 30;

/// Live log segment file name.
pub const LOG_FILE: &str = "wal.log";
/// Rotated-out segment (exists only inside a checkpoint window).
pub const PREV_FILE: &str = "wal.prev";
/// Latest durable snapshot.
pub const SNAPSHOT_FILE: &str = "snapshot.bin";
const SNAPSHOT_TMP: &str = "snapshot.tmp";

/// When the log is fsynced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncPolicy {
    /// fsync after every appended record.
    Always,
    /// Group commit: fsync once every N appended records (and at
    /// checkpoint rotation). On power loss at most the tail since the
    /// last fsync is lost; `kill -9` loses nothing (the OS page cache
    /// survives the process).
    EveryN(u64),
    /// Never fsync explicitly; the OS flushes on its own schedule. Still
    /// survives process crashes (`kill -9`) — only power loss can drop
    /// acknowledged writes.
    Off,
}

impl SyncPolicy {
    /// Parse `always` / `every_n:<N>` / `off` (used by CLI flags).
    pub fn parse(s: &str) -> Option<SyncPolicy> {
        match s {
            "always" => Some(SyncPolicy::Always),
            "off" => Some(SyncPolicy::Off),
            other => {
                let n = other.strip_prefix("every_n:").or_else(|| other.strip_prefix("every_n="))?;
                n.parse().ok().filter(|&n| n > 0).map(SyncPolicy::EveryN)
            }
        }
    }
}

impl std::fmt::Display for SyncPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SyncPolicy::Always => write!(f, "always"),
            SyncPolicy::EveryN(n) => write!(f, "every_n:{n}"),
            SyncPolicy::Off => write!(f, "off"),
        }
    }
}

/// Options for [`WalStore::open`].
#[derive(Debug, Clone, Copy)]
pub struct WalOptions {
    pub sync: SyncPolicy,
}

impl Default for WalOptions {
    fn default() -> Self {
        // Group-commit default: one fsync per 256 records. On ordinary
        // disks an fsync costs low milliseconds, so a narrower window
        // taxes bulk writes hard (see the E13 bench) while `kill -9`
        // safety is unaffected — only power loss can drop the window.
        WalOptions { sync: SyncPolicy::EveryN(256) }
    }
}

/// One recovered redo record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Record {
    pub lsn: u64,
    pub chan: u8,
    pub payload: Vec<u8>,
}

/// Snapshot payload: `(channel, encoded section)` pairs in written order.
pub type SnapshotSections = Vec<(u8, Vec<u8>)>;

/// Everything recovery found in the directory, ready to replay: the
/// snapshot sections (if any), then `records` in LSN order.
#[derive(Debug, Default)]
pub struct Recovered {
    /// LSN the snapshot covers (0 = no snapshot).
    pub snapshot_lsn: u64,
    /// Tagged snapshot sections, in written order.
    pub sections: SnapshotSections,
    /// Log records with `lsn > snapshot_lsn`, dense and ascending.
    pub records: Vec<Record>,
    /// Non-fatal recovery notes (torn tail truncated, ...).
    pub warnings: Vec<String>,
}

/// Point-in-time durability counters (see CLI `\wal-stats`).
#[derive(Debug, Clone)]
pub struct WalStats {
    /// Last assigned LSN (0 = nothing ever logged).
    pub last_lsn: u64,
    /// LSN covered by the latest durable snapshot.
    pub snapshot_lsn: u64,
    /// Bytes in the live segment (plus any rotated-out segment still on
    /// disk).
    pub log_bytes: u64,
    /// Wall-clock age of the latest durable snapshot, if one exists.
    pub last_checkpoint_age: Option<Duration>,
    pub sync_policy: SyncPolicy,
}

#[derive(Debug)]
struct Appender {
    file: File,
    last_lsn: u64,
    since_sync: u64,
    log_bytes: u64,
}

#[derive(Debug, Default)]
struct CkptState {
    running: Option<JoinHandle<Result<()>>>,
    last_error: Option<WalError>,
}


/// The write-ahead log + checkpoint manager for one directory.
#[derive(Debug)]
pub struct WalStore {
    dir: PathBuf,
    policy: SyncPolicy,
    /// Mutators hold this for reading across log-then-apply; the
    /// checkpointer holds it for writing while pinning. See module docs.
    barrier: RwLock<()>,
    appender: Mutex<Appender>,
    snapshot_lsn: AtomicU64,
    last_ckpt_at: Mutex<Option<SystemTime>>,
    ckpt: Mutex<CkptState>,
}

/// Locks the WAL's own group-commit discipline holds across its fsyncs by
/// design: the appender (fsync is part of the append critical section)
/// and the caller's barrier read side. Any *other* lock held across a WAL
/// fsync is a latency bug the tracking layer flags.
const FSYNC_EXPECTED: &[&str] = &["wal.appender", "wal.barrier"];

impl WalStore {
    /// Open (or create) a durable directory: load the latest valid
    /// snapshot, scan both log segments, tolerate a torn final record
    /// (truncate-and-warn, reported in [`Recovered::warnings`]), reject
    /// mid-log corruption with a typed error, consolidate the survivors
    /// into a single fresh `wal.log`, and return the store positioned for
    /// appending.
    pub fn open(dir: impl AsRef<Path>, opts: WalOptions) -> Result<(Arc<WalStore>, Recovered)> {
        let dir = dir.as_ref().to_path_buf();
        fs::create_dir_all(&dir).map_err(|e| WalError::io(format!("create {}", dir.display()), e))?;
        // A leftover snapshot.tmp is an interrupted checkpoint write —
        // never valid, always safe to discard.
        let _ = fs::remove_file(dir.join(SNAPSHOT_TMP));

        let snap_path = dir.join(SNAPSHOT_FILE);
        let mut snapshot_lsn = 0u64;
        let mut sections = Vec::new();
        let mut snap_mtime = None;
        let have_snapshot = snap_path.exists();
        if have_snapshot {
            let (lsn, secs) = read_snapshot(&snap_path)?;
            snapshot_lsn = lsn;
            sections = secs;
            snap_mtime = fs::metadata(&snap_path).ok().and_then(|m| m.modified().ok());
        }

        let mut warnings = Vec::new();
        let mut records: Vec<Record> = Vec::new();
        let mut earliest_base: Option<u64> = None;
        let mut had_prev = false;
        for name in [PREV_FILE, LOG_FILE] {
            let path = dir.join(name);
            if !path.exists() {
                continue;
            }
            if name == PREV_FILE {
                had_prev = true;
            }
            let (base, mut recs) = read_segment(&path, name, &mut warnings)?;
            if let Some(base) = base {
                if earliest_base.is_none() {
                    earliest_base = Some(base);
                }
                recs.retain(|r| r.lsn > snapshot_lsn);
                records.append(&mut recs);
            }
        }

        if let Some(base) = earliest_base {
            if base > snapshot_lsn {
                return Err(if have_snapshot {
                    WalError::LsnGap { expected: snapshot_lsn, found: base }
                } else {
                    WalError::MissingSnapshot { base_lsn: base }
                });
            }
        }
        // The surviving records must continue the snapshot without holes.
        for (expected, r) in (snapshot_lsn + 1..).zip(records.iter()) {
            if r.lsn != expected {
                return Err(WalError::LsnGap { expected, found: r.lsn });
            }
        }
        let last_lsn = records.last().map(|r| r.lsn).unwrap_or(snapshot_lsn);

        // Consolidate into one fresh segment based at the snapshot LSN:
        // post-open invariant is a single wal.log whose records are
        // exactly the replayed tail (torn bytes and wal.prev gone).
        let consolidated = dir.join("wal.new");
        {
            let mut enc = Encoder::with_capacity(
                records.iter().map(|r| r.payload.len() + 17).sum::<usize>() + 16,
            );
            enc_segment_header(&mut enc, snapshot_lsn);
            for r in &records {
                enc_record(&mut enc, r.lsn, r.chan, &r.payload);
            }
            let mut f = File::create(&consolidated)
                .map_err(|e| WalError::io(format!("create {}", consolidated.display()), e))?;
            f.write_all(enc.as_slice())
                .map_err(|e| WalError::io(format!("write {}", consolidated.display()), e))?;
            f.sync_data()
                .map_err(|e| WalError::io(format!("sync {}", consolidated.display()), e))?;
        }
        let log_path = dir.join(LOG_FILE);
        fs::rename(&consolidated, &log_path)
            .map_err(|e| WalError::io(format!("rename to {}", log_path.display()), e))?;
        if had_prev {
            let _ = fs::remove_file(dir.join(PREV_FILE));
        }
        sync_dir(&dir);

        let file = OpenOptions::new()
            .append(true)
            .open(&log_path)
            .map_err(|e| WalError::io(format!("open {} for append", log_path.display()), e))?;
        let log_bytes = fs::metadata(&log_path).map(|m| m.len()).unwrap_or(0);

        let store = Arc::new(WalStore {
            dir,
            policy: opts.sync,
            barrier: RwLock::new_labeled("wal.barrier", ()),
            appender: Mutex::new_labeled(
                "wal.appender",
                Appender { file, last_lsn, since_sync: 0, log_bytes },
            ),
            snapshot_lsn: AtomicU64::new(snapshot_lsn),
            last_ckpt_at: Mutex::new_labeled("wal.ckpt_at", snap_mtime),
            ckpt: Mutex::new_labeled("wal.ckpt", CkptState::default()),
        });
        Ok((store, Recovered { snapshot_lsn, sections, records, warnings }))
    }

    /// The append/checkpoint barrier. Mutators MUST hold the read side
    /// across their whole append-then-apply critical section (the sink
    /// adapters in the engine crates do this); the checkpointer takes the
    /// write side while pinning.
    pub fn barrier(&self) -> &RwLock<()> {
        &self.barrier
    }

    /// Append one redo record; returns its LSN. The caller is expected to
    /// hold the [`WalStore::barrier`] read lock.
    ///
    /// Applies the sync policy inline — the record is durable (per policy)
    /// when this returns. Callers that hold their own data locks across
    /// the append-then-apply critical section should prefer
    /// [`WalStore::append_nosync`] + [`WalStore::sync_policy`] *after*
    /// releasing them, so no engine lock is ever held across an fsync.
    pub fn append(&self, chan: u8, payload: &[u8]) -> Result<u64> {
        let lsn = self.append_nosync(chan, payload)?;
        self.sync_policy()?;
        Ok(lsn)
    }

    /// Append one redo record to the OS without fsyncing; returns its
    /// LSN. The caller is expected to hold the [`WalStore::barrier`] read
    /// lock, and to call [`WalStore::sync_policy`] once its own locks are
    /// released — until then the record survives `kill -9` (page cache)
    /// but not power loss.
    pub fn append_nosync(&self, chan: u8, payload: &[u8]) -> Result<u64> {
        if payload.len() as u64 > (MAX_RECORD_LEN - RECORD_OVERHEAD) as u64 {
            return Err(WalError::BadRecord(format!(
                "record payload of {} bytes exceeds the {} byte limit",
                payload.len(),
                MAX_RECORD_LEN - RECORD_OVERHEAD
            )));
        }
        let mut app = self.appender.lock();
        let lsn = app.last_lsn + 1;
        let mut enc = Encoder::with_capacity(payload.len() + 17);
        enc_record(&mut enc, lsn, chan, payload);
        app.file
            .write_all(enc.as_slice())
            .map_err(|e| WalError::io("append to wal.log", e))?;
        app.last_lsn = lsn;
        app.log_bytes += enc.len() as u64;
        app.since_sync += 1;
        Ok(lsn)
    }

    /// Fsync the live segment if (and only if) the sync policy says the
    /// unsynced tail is due. The deferred half of
    /// [`WalStore::append_nosync`]; cheap when nothing is due.
    pub fn sync_policy(&self) -> Result<()> {
        let mut app = self.appender.lock();
        let due = match self.policy {
            SyncPolicy::Always => app.since_sync > 0,
            SyncPolicy::EveryN(n) => app.since_sync >= n,
            SyncPolicy::Off => false,
        };
        if due {
            let _io = tracking::blocking_region_allowing("wal.fsync", FSYNC_EXPECTED);
            app.file.sync_data().map_err(|e| WalError::io("fsync wal.log", e))?;
            app.since_sync = 0;
        }
        Ok(())
    }

    /// Force an fsync of the live segment regardless of policy.
    pub fn sync(&self) -> Result<()> {
        let mut app = self.appender.lock();
        let _io = tracking::blocking_region_allowing("wal.fsync", FSYNC_EXPECTED);
        app.file.sync_data().map_err(|e| WalError::io("fsync wal.log", e))?;
        app.since_sync = 0;
        Ok(())
    }

    /// Take a checkpoint. Under the barrier write lock this (1) reads the
    /// pin LSN, (2) rotates `wal.log` to `wal.prev` and starts a fresh
    /// segment, and (3) runs `pin` to capture cheap handles on the
    /// in-memory state (generational `Arc` snapshots — `pin` must be
    /// fast). The expensive part — `encode` and the snapshot file write —
    /// runs on a background thread while writers proceed; once the
    /// snapshot is durably renamed, `wal.prev` is deleted, truncating the
    /// log up to the checkpoint LSN. Returns the checkpoint LSN.
    ///
    /// Checkpoints are serialised: a new call first joins the previous
    /// background writer (reporting its error, if any).
    pub fn checkpoint<T, F, G>(self: &Arc<Self>, pin: F, encode: G) -> Result<u64>
    where
        T: Send + 'static,
        F: FnOnce() -> T,
        G: FnOnce(T) -> SnapshotSections + Send + 'static,
    {
        let mut ckpt = self.ckpt.lock();
        if let Some(handle) = ckpt.running.take() {
            join_ckpt(handle, &mut ckpt)?;
        }
        ckpt.last_error = None;

        let lsn;
        let pinned;
        {
            let _barrier = self.barrier.write();
            let mut app = self.appender.lock();
            lsn = app.last_lsn;
            {
                // Rotation does rename/create under the barrier write lock
                // by design — that stall is the checkpoint pin window
                // itself. Scoped so the marker ends before `pin()` runs
                // engine code that takes its own locks.
                let _io = tracking::blocking_region_allowing(
                    "wal.rotate",
                    &["wal.ckpt", "wal.barrier", "wal.appender"],
                );
                let log_path = self.dir.join(LOG_FILE);
                let prev_path = self.dir.join(PREV_FILE);
                fs::rename(&log_path, &prev_path)
                    .map_err(|e| WalError::io("rotate wal.log to wal.prev", e))?;
                let mut enc = Encoder::with_capacity(16);
                enc_segment_header(&mut enc, lsn);
                let mut file = File::create(&log_path)
                    .map_err(|e| WalError::io("create fresh wal.log", e))?;
                file.write_all(enc.as_slice())
                    .map_err(|e| WalError::io("write wal.log header", e))?;
                app.file = file;
                app.since_sync = 0;
                app.log_bytes = SEGMENT_HEADER_LEN;
            }
            drop(app);
            pinned = pin();
        }

        let me = Arc::clone(self);
        let handle = std::thread::spawn(move || -> Result<()> {
            let sections = encode(pinned);
            me.write_snapshot(lsn, &sections)?;
            me.snapshot_lsn.store(lsn, Ordering::Release);
            *me.last_ckpt_at.lock() = Some(SystemTime::now());
            let _ = fs::remove_file(me.dir.join(PREV_FILE));
            sync_dir(&me.dir);
            Ok(())
        });
        ckpt.running = Some(handle);
        Ok(lsn)
    }

    /// Wait for any in-flight background snapshot write and surface its
    /// result.
    pub fn checkpoint_join(&self) -> Result<()> {
        let mut ckpt = self.ckpt.lock();
        if let Some(handle) = ckpt.running.take() {
            join_ckpt(handle, &mut ckpt)?;
        }
        match ckpt.last_error.clone() {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    fn write_snapshot(&self, lsn: u64, sections: &[(u8, Vec<u8>)]) -> Result<()> {
        // Runs on the background checkpoint thread with no locks held; the
        // marker catches any future caller that drags a lock in here.
        let _io = tracking::blocking_region("wal.snapshot_write");
        let mut body = Encoder::with_capacity(
            16 + sections.iter().map(|(_, b)| b.len() + 5).sum::<usize>(),
        );
        body.u64(lsn);
        body.u32(sections.len() as u32);
        for (tag, bytes) in sections {
            body.u8(*tag);
            body.bytes(bytes);
        }
        let crc = crc32(body.as_slice());
        let tmp = self.dir.join(SNAPSHOT_TMP);
        let mut f = File::create(&tmp).map_err(|e| WalError::io("create snapshot.tmp", e))?;
        f.write_all(SNAP_MAGIC).map_err(|e| WalError::io("write snapshot.tmp", e))?;
        f.write_all(body.as_slice()).map_err(|e| WalError::io("write snapshot.tmp", e))?;
        f.write_all(&crc.to_le_bytes()).map_err(|e| WalError::io("write snapshot.tmp", e))?;
        f.sync_all().map_err(|e| WalError::io("sync snapshot.tmp", e))?;
        drop(f);
        fs::rename(&tmp, self.dir.join(SNAPSHOT_FILE))
            .map_err(|e| WalError::io("rename snapshot.tmp to snapshot.bin", e))?;
        sync_dir(&self.dir);
        Ok(())
    }

    /// Current durability counters.
    pub fn stats(&self) -> WalStats {
        let app = self.appender.lock();
        let mut log_bytes = app.log_bytes;
        let last_lsn = app.last_lsn;
        drop(app);
        if let Ok(m) = fs::metadata(self.dir.join(PREV_FILE)) {
            log_bytes += m.len();
        }
        WalStats {
            last_lsn,
            snapshot_lsn: self.snapshot_lsn.load(Ordering::Acquire),
            log_bytes,
            last_checkpoint_age: self
                .last_ckpt_at
                .lock()
                .and_then(|t| SystemTime::now().duration_since(t).ok()),
            sync_policy: self.policy,
        }
    }

    /// The directory this store manages.
    pub fn dir(&self) -> &Path {
        &self.dir
    }
}

fn join_ckpt(handle: JoinHandle<Result<()>>, ckpt: &mut CkptState) -> Result<()> {
    match handle.join() {
        Ok(Ok(())) => Ok(()),
        Ok(Err(e)) => {
            ckpt.last_error = Some(e.clone());
            Err(e)
        }
        Err(_) => {
            let e = WalError::Io("checkpoint writer thread panicked".into());
            ckpt.last_error = Some(e.clone());
            Err(e)
        }
    }
}

fn enc_segment_header(enc: &mut Encoder, base_lsn: u64) {
    for &b in LOG_MAGIC {
        enc.u8(b);
    }
    enc.u64(base_lsn);
}

fn enc_record(enc: &mut Encoder, lsn: u64, chan: u8, payload: &[u8]) {
    let mut body = Encoder::with_capacity(payload.len() + 9);
    body.u64(lsn);
    body.u8(chan);
    let body = {
        let mut v = body.into_vec();
        v.extend_from_slice(payload);
        v
    };
    enc.u32(body.len() as u32);
    enc.u32(crc32(&body));
    enc.raw(&body);
}

fn sync_dir(dir: &Path) {
    // Make renames/unlinks durable where the platform supports fsync on
    // directories; elsewhere this is a silent no-op.
    if let Ok(d) = File::open(dir) {
        let _ = d.sync_all();
    }
}

/// Parse one segment. Returns `(base_lsn, records)`; a torn tail appends
/// to `warnings` and stops the scan, mid-file corruption is a typed
/// error. `base_lsn` is `None` when even the header is torn (the segment
/// contributes nothing).
fn read_segment(
    path: &Path,
    name: &str,
    warnings: &mut Vec<String>,
) -> Result<(Option<u64>, Vec<Record>)> {
    let bytes = fs::read(path).map_err(|e| WalError::io(format!("read {name}"), e))?;
    if bytes.len() < SEGMENT_HEADER_LEN as usize {
        if !bytes.is_empty() {
            warnings.push(format!("{name}: torn segment header ({} bytes), ignored", bytes.len()));
        }
        return Ok((None, Vec::new()));
    }
    if &bytes[..8] != LOG_MAGIC {
        return Err(WalError::Corrupt {
            segment: name.to_string(),
            offset: 0,
            reason: "bad segment magic".into(),
        });
    }
    let base_lsn = u64::from_le_bytes(bytes[8..16].try_into().expect("8 bytes"));
    let mut records = Vec::new();
    let mut off = SEGMENT_HEADER_LEN as usize;
    let mut expected_lsn = base_lsn + 1;
    while off < bytes.len() {
        let remaining = bytes.len() - off;
        if remaining < 8 {
            warnings.push(format!(
                "{name}: torn record framing at byte {off} ({remaining} trailing bytes dropped)"
            ));
            break;
        }
        let len = u32::from_le_bytes(bytes[off..off + 4].try_into().expect("4 bytes"));
        let crc = u32::from_le_bytes(bytes[off + 4..off + 8].try_into().expect("4 bytes"));
        if !(RECORD_OVERHEAD..=MAX_RECORD_LEN).contains(&len) {
            return Err(WalError::Corrupt {
                segment: name.to_string(),
                offset: off as u64,
                reason: format!("implausible record length {len}"),
            });
        }
        let body_end = off + 8 + len as usize;
        if body_end > bytes.len() {
            warnings.push(format!(
                "{name}: torn final record at byte {off} ({} of {len} body bytes present, dropped)",
                bytes.len() - off - 8
            ));
            break;
        }
        let body = &bytes[off + 8..body_end];
        if crc32(body) != crc {
            if body_end == bytes.len() {
                // A bad checksum on the very last record is
                // indistinguishable from a torn write: truncate and warn.
                warnings.push(format!(
                    "{name}: checksum mismatch on final record at byte {off}, dropped"
                ));
                break;
            }
            return Err(WalError::Corrupt {
                segment: name.to_string(),
                offset: off as u64,
                reason: "checksum mismatch".into(),
            });
        }
        let mut d = Decoder::new(body);
        let lsn = d.u64().expect("length checked");
        let chan = d.u8().expect("length checked");
        if lsn != expected_lsn {
            return Err(WalError::Corrupt {
                segment: name.to_string(),
                offset: off as u64,
                reason: format!("non-sequential lsn {lsn} (expected {expected_lsn})"),
            });
        }
        expected_lsn += 1;
        records.push(Record { lsn, chan, payload: body[9..].to_vec() });
        off = body_end;
    }
    Ok((Some(base_lsn), records))
}

fn read_snapshot(path: &Path) -> Result<(u64, SnapshotSections)> {
    let bytes =
        fs::read(path).map_err(|e| WalError::CorruptSnapshot(format!("unreadable: {e}")))?;
    if bytes.len() < 24 || &bytes[..8] != SNAP_MAGIC {
        return Err(WalError::CorruptSnapshot("bad magic or truncated header".into()));
    }
    let body = &bytes[8..bytes.len() - 4];
    let stored_crc =
        u32::from_le_bytes(bytes[bytes.len() - 4..].try_into().expect("4 bytes"));
    if crc32(body) != stored_crc {
        return Err(WalError::CorruptSnapshot("checksum mismatch".into()));
    }
    let mut d = Decoder::new(body);
    let lsn = d.u64().map_err(|e| WalError::CorruptSnapshot(e.to_string()))?;
    let n = d.u32().map_err(|e| WalError::CorruptSnapshot(e.to_string()))?;
    let mut sections = Vec::with_capacity(n as usize);
    for _ in 0..n {
        let tag = d.u8().map_err(|e| WalError::CorruptSnapshot(e.to_string()))?;
        let b = d.bytes().map_err(|e| WalError::CorruptSnapshot(e.to_string()))?;
        sections.push((tag, b.to_vec()));
    }
    d.finish().map_err(|e| WalError::CorruptSnapshot(e.to_string()))?;
    Ok((lsn, sections))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join(format!("crosse-wal-{}-{name}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn reopen(dir: &Path) -> (Arc<WalStore>, Recovered) {
        WalStore::open(dir, WalOptions::default()).unwrap()
    }

    #[test]
    fn fresh_dir_appends_and_recovers() {
        let dir = tmp("fresh");
        let (wal, rec) = reopen(&dir);
        assert_eq!(rec.snapshot_lsn, 0);
        assert!(rec.records.is_empty() && rec.sections.is_empty());
        assert_eq!(wal.append(1, b"alpha").unwrap(), 1);
        assert_eq!(wal.append(2, b"beta").unwrap(), 2);
        wal.sync().unwrap();
        drop(wal);

        let (wal, rec) = reopen(&dir);
        assert_eq!(rec.records.len(), 2);
        assert_eq!(rec.records[0], Record { lsn: 1, chan: 1, payload: b"alpha".to_vec() });
        assert_eq!(rec.records[1].chan, 2);
        assert_eq!(wal.stats().last_lsn, 2);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpoint_truncates_log_and_recovery_replays_tail() {
        let dir = tmp("ckpt");
        let (wal, _) = reopen(&dir);
        wal.append(1, b"one").unwrap();
        wal.append(1, b"two").unwrap();
        let lsn = wal
            .checkpoint(|| b"pinned".to_vec(), |p| vec![(1u8, p)])
            .unwrap();
        assert_eq!(lsn, 2);
        wal.checkpoint_join().unwrap();
        wal.append(1, b"three").unwrap();
        wal.sync().unwrap();
        assert!(!dir.join(PREV_FILE).exists(), "prev segment deleted after checkpoint");
        drop(wal);

        let (_, rec) = reopen(&dir);
        assert_eq!(rec.snapshot_lsn, 2);
        assert_eq!(rec.sections, vec![(1u8, b"pinned".to_vec())]);
        assert_eq!(rec.records.len(), 1, "only the post-checkpoint tail replays");
        assert_eq!(rec.records[0].lsn, 3);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn crash_between_rotate_and_snapshot_keeps_both_segments() {
        let dir = tmp("midckpt");
        let (wal, _) = reopen(&dir);
        wal.append(1, b"one").unwrap();
        wal.sync().unwrap();
        drop(wal);
        // Simulate the window after rotation but before the snapshot
        // rename: wal.prev holds the old records, wal.log is fresh.
        fs::rename(dir.join(LOG_FILE), dir.join(PREV_FILE)).unwrap();
        let mut enc = Encoder::new();
        enc_segment_header(&mut enc, 1);
        enc_record(&mut enc, 2, 1, b"two");
        fs::write(dir.join(LOG_FILE), enc.as_slice()).unwrap();

        let (_, rec) = reopen(&dir);
        assert_eq!(rec.snapshot_lsn, 0);
        let payloads: Vec<&[u8]> = rec.records.iter().map(|r| r.payload.as_slice()).collect();
        assert_eq!(payloads, vec![b"one".as_slice(), b"two".as_slice()]);
        assert!(!dir.join(PREV_FILE).exists(), "open consolidates the segments");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_truncates_with_warning() {
        let dir = tmp("torn");
        let (wal, _) = reopen(&dir);
        wal.append(1, b"good").unwrap();
        wal.append(1, b"will-be-torn").unwrap();
        wal.sync().unwrap();
        drop(wal);
        let path = dir.join(LOG_FILE);
        let bytes = fs::read(&path).unwrap();
        fs::write(&path, &bytes[..bytes.len() - 5]).unwrap();

        let (_, rec) = reopen(&dir);
        assert_eq!(rec.records.len(), 1);
        assert_eq!(rec.records[0].payload, b"good");
        assert!(!rec.warnings.is_empty(), "torn tail must be reported");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn bit_flip_mid_log_is_typed_corruption() {
        let dir = tmp("flip");
        let (wal, _) = reopen(&dir);
        wal.append(1, b"first-record-payload").unwrap();
        wal.append(1, b"second-record-payload").unwrap();
        wal.sync().unwrap();
        drop(wal);
        let path = dir.join(LOG_FILE);
        let mut bytes = fs::read(&path).unwrap();
        // Flip a payload byte inside the FIRST record (offset: header 16 +
        // frame 8 + lsn 8 + chan 1 + a few payload bytes).
        bytes[16 + 8 + 9 + 3] ^= 0x40;
        fs::write(&path, &bytes).unwrap();

        let err = WalStore::open(&dir, WalOptions::default()).unwrap_err();
        assert!(
            matches!(err, WalError::Corrupt { .. }),
            "mid-log corruption must be typed, got {err}"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn bit_flip_on_final_record_truncates_with_warning() {
        let dir = tmp("flip-tail");
        let (wal, _) = reopen(&dir);
        wal.append(1, b"keep-me").unwrap();
        wal.append(1, b"flip-me").unwrap();
        wal.sync().unwrap();
        drop(wal);
        let path = dir.join(LOG_FILE);
        let mut bytes = fs::read(&path).unwrap();
        let n = bytes.len();
        bytes[n - 2] ^= 0x01;
        fs::write(&path, &bytes).unwrap();

        let (_, rec) = reopen(&dir);
        assert_eq!(rec.records.len(), 1);
        assert!(rec.warnings.iter().any(|w| w.contains("checksum")), "{:?}", rec.warnings);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_snapshot_with_rebased_log_is_typed_error() {
        let dir = tmp("nosnap");
        let (wal, _) = reopen(&dir);
        wal.append(1, b"a").unwrap();
        wal.checkpoint(|| (), |_| vec![(1u8, b"s".to_vec())]).unwrap();
        wal.checkpoint_join().unwrap();
        wal.append(1, b"b").unwrap();
        wal.sync().unwrap();
        drop(wal);
        fs::remove_file(dir.join(SNAPSHOT_FILE)).unwrap();

        let err = WalStore::open(&dir, WalOptions::default()).unwrap_err();
        assert!(matches!(err, WalError::MissingSnapshot { base_lsn: 1 }), "{err}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_snapshot_is_typed_error() {
        let dir = tmp("badsnap");
        let (wal, _) = reopen(&dir);
        wal.append(1, b"a").unwrap();
        wal.checkpoint(|| (), |_| vec![(1u8, b"section".to_vec())]).unwrap();
        wal.checkpoint_join().unwrap();
        drop(wal);
        let path = dir.join(SNAPSHOT_FILE);
        let mut bytes = fs::read(&path).unwrap();
        bytes[12] ^= 0xFF;
        fs::write(&path, &bytes).unwrap();

        let err = WalStore::open(&dir, WalOptions::default()).unwrap_err();
        assert!(matches!(err, WalError::CorruptSnapshot(_)), "{err}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_snapshot_with_long_tail_recovers() {
        let dir = tmp("stale");
        let (wal, _) = reopen(&dir);
        wal.append(1, b"a").unwrap();
        wal.checkpoint(|| (), |_| vec![(1u8, b"old".to_vec())]).unwrap();
        wal.checkpoint_join().unwrap();
        for i in 0..50 {
            wal.append(1, format!("tail-{i}").as_bytes()).unwrap();
        }
        wal.sync().unwrap();
        drop(wal);

        let (_, rec) = reopen(&dir);
        assert_eq!(rec.snapshot_lsn, 1);
        assert_eq!(rec.sections, vec![(1u8, b"old".to_vec())]);
        assert_eq!(rec.records.len(), 50);
        assert_eq!(rec.records.last().unwrap().lsn, 51);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn sync_policy_parsing() {
        assert_eq!(SyncPolicy::parse("always"), Some(SyncPolicy::Always));
        assert_eq!(SyncPolicy::parse("off"), Some(SyncPolicy::Off));
        assert_eq!(SyncPolicy::parse("every_n:8"), Some(SyncPolicy::EveryN(8)));
        assert_eq!(SyncPolicy::parse("every_n=32"), Some(SyncPolicy::EveryN(32)));
        assert_eq!(SyncPolicy::parse("every_n:0"), None);
        assert_eq!(SyncPolicy::parse("sometimes"), None);
        assert_eq!(SyncPolicy::EveryN(64).to_string(), "every_n:64");
    }

    #[test]
    fn stats_track_lsn_and_bytes() {
        let dir = tmp("stats");
        let (wal, _) = reopen(&dir);
        let s0 = wal.stats();
        assert_eq!(s0.last_lsn, 0);
        wal.append(1, b"x").unwrap();
        let s1 = wal.stats();
        assert_eq!(s1.last_lsn, 1);
        assert!(s1.log_bytes > s0.log_bytes);
        assert!(s1.last_checkpoint_age.is_none());
        wal.checkpoint(|| (), |_| vec![]).unwrap();
        wal.checkpoint_join().unwrap();
        assert!(wal.stats().last_checkpoint_age.is_some());
        assert_eq!(wal.stats().snapshot_lsn, 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn writers_proceed_while_checkpoint_encodes() {
        let dir = tmp("concurrent");
        let (wal, _) = reopen(&dir);
        wal.append(1, b"before").unwrap();
        // Encode stage sleeps; appends during it must succeed and land in
        // the fresh segment.
        let lsn = wal
            .checkpoint(
                || (),
                |_| {
                    std::thread::sleep(Duration::from_millis(50));
                    vec![(1u8, b"slow".to_vec())]
                },
            )
            .unwrap();
        assert_eq!(lsn, 1);
        let during = wal.append(1, b"during").unwrap();
        assert_eq!(during, 2);
        wal.checkpoint_join().unwrap();
        wal.sync().unwrap();
        drop(wal);
        let (_, rec) = reopen(&dir);
        assert_eq!(rec.snapshot_lsn, 1);
        assert_eq!(rec.records.len(), 1);
        assert_eq!(rec.records[0].payload, b"during");
        let _ = fs::remove_dir_all(&dir);
    }
}
