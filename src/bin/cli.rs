// srclint: allow(R002): the unwrap follows an is_some() branch guard and a never-returning workload call
//! Interactive CroSSE shell: a SESQL REPL over a generated SmartGround
//! databank with per-user knowledge bases.
//!
//! ```text
//! cargo run --bin crosse-cli                # default databank (50 landfills)
//! cargo run --bin crosse-cli -- --landfills 200 --seed 7
//! echo "SELECT name, city FROM landfill LIMIT 3;" | cargo run --bin crosse-cli
//! ```
//!
//! SQL/SESQL statements end with `;` and may span lines; everything else is
//! a dot-command (`.help` lists them).

#![forbid(unsafe_code)]

use std::collections::HashMap;
use std::io::{self, BufRead, Write};
use std::time::{Duration, Instant};

use crosse::core::platform::CrossePlatform;
use crosse::core::sqm::{EnrichedResult, PreparedSesql, SesqlEngine};
use crosse::core::{SyncPolicy, WalOptions};
use crosse::rdf::sparql::eval::{query_any, QueryOutcome};
use crosse::rdf::store::Triple;
use crosse::rdf::term::Term;
use crosse::relational::{ExecOutcome, Params, Value};
use crosse::server::{Client, Lang, QueryOutcome as WireOutcome, Server, ServerConfig};
use crosse::smartground::{standard_engine, standard_engine_at_with, SmartGroundConfig};

struct Shell {
    platform: CrossePlatform,
    user: String,
    show_report: bool,
    /// `--timing`: report prepare vs execute wall time separately.
    timing: bool,
    /// `--explain`: print the optimized plan (with rewrite-pass
    /// annotations) before each statement's results.
    explain: bool,
    /// `--lint`: run the semantic linter on each statement and print its
    /// findings before the results.
    lint: bool,
    /// `--deny-warnings`: refuse to execute statements with warning-or-
    /// worse lint findings; the process exits non-zero at the end.
    deny_warnings: bool,
    /// Whether any statement was refused under `--deny-warnings`.
    lint_failed: bool,
    /// Named prepared statements (`\prepare` / `\exec`).
    prepared: HashMap<String, PreparedSesql>,
}

fn fmt_duration(d: Duration) -> String {
    if d >= Duration::from_millis(10) {
        format!("{:.2} ms", d.as_secs_f64() * 1e3)
    } else {
        format!("{:.1} µs", d.as_secs_f64() * 1e6)
    }
}

fn main() {
    let mut landfills = 50usize;
    let mut seed = 42u64;
    let mut timing = false;
    let mut explain = false;
    let mut lint = false;
    let mut deny_warnings = false;
    let mut threads = 1usize;
    let mut data_dir: Option<std::path::PathBuf> = None;
    let mut wal_sync: Option<String> = None;
    let mut crash_workload = false;
    let mut verify_crash: Option<u64> = None;
    let mut serve: Option<String> = None;
    let mut connect: Option<String> = None;
    let mut user = "director".to_string();
    let mut max_active: Option<usize> = None;
    let mut queue_depth: Option<usize> = None;
    let mut deadline_ms: Option<u32> = None;
    let mut read_timeout_ms: Option<u64> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--landfills" => {
                landfills = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--landfills needs a number"));
            }
            "--seed" => {
                seed = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--seed needs a number"));
            }
            "--timing" => timing = true,
            "--explain" => explain = true,
            "--lint" => lint = true,
            "--deny-warnings" => deny_warnings = true,
            "--data-dir" => {
                data_dir = Some(
                    args.next().unwrap_or_else(|| die("--data-dir needs a path")).into(),
                );
            }
            "--wal-sync" => {
                wal_sync =
                    Some(args.next().unwrap_or_else(|| die("--wal-sync needs a policy")));
            }
            // Internal hooks for the crash-recovery harness (`cargo xtask
            // crash`); deliberately undocumented in --help.
            "--crash-workload" => crash_workload = true,
            "--verify-crash" => {
                verify_crash = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| die("--verify-crash needs a batch number")),
                );
            }
            "--threads" => {
                threads = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n >= 1)
                    .unwrap_or_else(|| die("--threads needs a number >= 1"));
            }
            "--serve" => {
                serve = Some(args.next().unwrap_or_else(|| die("--serve needs HOST:PORT")));
            }
            "--connect" => {
                connect =
                    Some(args.next().unwrap_or_else(|| die("--connect needs HOST:PORT")));
            }
            "--user" => {
                user = args.next().unwrap_or_else(|| die("--user needs a name"));
            }
            "--max-active" => {
                max_active = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .filter(|&n| n >= 1)
                        .unwrap_or_else(|| die("--max-active needs a number >= 1")),
                );
            }
            "--queue-depth" => {
                queue_depth = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| die("--queue-depth needs a number")),
                );
            }
            "--deadline-ms" => {
                deadline_ms = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| die("--deadline-ms needs a number")),
                );
            }
            // Internal hook for the chaos harness (`cargo xtask chaos`):
            // shrink the slow-frame window so slowloris rounds are fast.
            "--read-timeout-ms" => {
                read_timeout_ms = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| die("--read-timeout-ms needs a number")),
                );
            }
            "--help" | "-h" => {
                println!(
                    "crosse-cli [--landfills N] [--seed N] [--timing] [--explain] [--lint]\n\
                     \x20          [--deny-warnings] [--threads N] [--data-dir DIR]\n\
                     \x20          [--wal-sync POLICY]\n\
                     \n\
                     --landfills N  databank scale: number of generated landfills (default 50)\n\
                     --seed N       databank RNG seed (default 42)\n\
                     --timing       report prepare vs execute wall time per statement\n\
                     --explain      print the optimized plan (EXPLAIN, with rewrite-pass\n\
                     \x20              annotations and shared spools) before each result\n\
                     --lint         run the semantic linter (always-false predicates,\n\
                     \x20              cross joins, dead condition tags, ...) on each\n\
                     \x20              statement and print its findings\n\
                     --deny-warnings  refuse to execute statements with warning-or-worse\n\
                     \x20              lint findings; exit non-zero if any were refused\n\
                     --threads N    worker threads for intra-query parallelism (default 1).\n\
                     \x20              Scans, filters, projections and hash-join probes\n\
                     \x20              partition table snapshots across N threads; SPARQL\n\
                     \x20              probe batches use the same budget.\n\
                     --data-dir DIR persist the databank and knowledge base at DIR through\n\
                     \x20              a write-ahead log: first run seeds and logs, later\n\
                     \x20              runs recover (snapshot + log replay). Adds the\n\
                     \x20              \\checkpoint and \\wal-stats commands.\n\
                     --wal-sync P   WAL fsync policy: always, every_n:<N> (default\n\
                     \x20              every_n:256) or off. Requires --data-dir.\n\
                     --serve ADDR   serve the databank over TCP (CROSNET1 framed protocol,\n\
                     \x20              admission control + per-query deadlines; see\n\
                     \x20              crates/server/DESIGN.md). Prints the bound address,\n\
                     \x20              then runs until stdin closes (graceful drain).\n\
                     --connect ADDR open the shell against a remote server instead of a\n\
                     \x20              local databank (adds the \\server-stats command)\n\
                     --user NAME    session user for --connect (default director)\n\
                     --max-active N --serve: concurrent query limit (default 4)\n\
                     --queue-depth N --serve: admission queue depth (default 16)\n\
                     --deadline-ms N --serve: default per-query deadline (0 = none);\n\
                     \x20              --connect: per-query deadline sent with each query"
                );
                return;
            }
            other => die(&format!("unknown argument `{other}` (try --help)")),
        }
    }

    if let Some(addr) = connect {
        run_connect_shell(&addr, &user, deadline_ms.unwrap_or(0));
        return;
    }

    let config = SmartGroundConfig::default()
        .with_landfills(landfills)
        .with_seed(seed);
    let engine = match &data_dir {
        Some(dir) => {
            let opts = match &wal_sync {
                Some(p) => WalOptions {
                    sync: SyncPolicy::parse(p).unwrap_or_else(|| {
                        die("--wal-sync needs always, every_n:<N> or off")
                    }),
                },
                None => WalOptions::default(),
            };
            let engine =
                standard_engine_at_with(&config, "director", dir, opts).unwrap_or_else(
                    |e| die(&format!("failed to open data dir {}: {e}", dir.display())),
                );
            for w in engine.recovery_warnings() {
                eprintln!("crosse-cli: recovery: {w}");
            }
            engine
        }
        None => {
            if wal_sync.is_some() {
                die("--wal-sync requires --data-dir");
            }
            standard_engine(&config, "director").unwrap_or_else(|e| {
                die(&format!("failed to build the databank: {e}"));
            })
        }
    };
    engine.set_exec_threads(threads);
    if crash_workload || verify_crash.is_some() {
        if data_dir.is_none() {
            die("--crash-workload / --verify-crash require --data-dir");
        }
        if crash_workload {
            run_crash_workload(&engine);
        }
        verify_crash_state(&engine, verify_crash.unwrap());
    }
    if let Some(addr) = serve {
        let mut config = ServerConfig { addr, ..ServerConfig::default() };
        if let Some(n) = max_active {
            config.max_active = n;
        }
        if let Some(n) = queue_depth {
            config.queue_depth = n;
        }
        if let Some(ms) = deadline_ms {
            config.default_deadline_ms = ms;
        }
        if let Some(ms) = read_timeout_ms {
            config.read_timeout = Duration::from_millis(ms);
        }
        run_server(engine, config);
        return;
    }
    let platform = CrossePlatform::from_engine(engine);
    let mut shell = Shell {
        platform,
        user: "director".to_string(),
        show_report: false,
        timing,
        explain,
        lint,
        deny_warnings,
        lint_failed: false,
        prepared: HashMap::new(),
    };

    let interactive = is_tty();
    if interactive {
        println!(
            "CroSSE shell — SmartGround databank with {landfills} landfills (seed {seed})."
        );
        println!("SESQL statements end with `;`. Type `.help` for commands.");
    }

    let stdin = io::stdin();
    let mut buffer = String::new();
    loop {
        if interactive {
            if buffer.is_empty() {
                print!("crosse:{}> ", shell.user);
            } else {
                print!("   ...> ");
            }
            let _ = io::stdout().flush();
        }
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break, // EOF
            Ok(_) => {}
            Err(e) => die(&format!("stdin: {e}")),
        }
        let trimmed = line.trim();
        if buffer.is_empty() && trimmed.starts_with('.') {
            if !shell.dot_command(trimmed) {
                break;
            }
            continue;
        }
        if buffer.is_empty() && trimmed.starts_with('\\') {
            shell.meta_command(trimmed.trim_end_matches(';'));
            continue;
        }
        if trimmed.is_empty() && buffer.is_empty() {
            continue;
        }
        buffer.push_str(&line);
        if trimmed.ends_with(';') {
            let stmt = buffer.trim().trim_end_matches(';').trim().to_string();
            buffer.clear();
            if !stmt.is_empty() {
                shell.run_statement(&stmt);
            }
        }
    }
    if shell.lint_failed {
        std::process::exit(1);
    }
}

fn die(msg: &str) -> ! {
    eprintln!("crosse-cli: {msg}");
    std::process::exit(1)
}

/// Rows per crash-workload batch. Each batch is ONE multi-row INSERT —
/// one WAL record — so recovery either replays the whole batch or none
/// of it; the verifier checks exactly that.
const CRASH_ROWS_PER_BATCH: i64 = 32;

/// `--crash-workload`: write batches forever (until killed). Per batch:
/// one multi-row INSERT into `crash_log` and one provenance statement,
/// then an `ack <batch>` line on stdout. The harness (`cargo xtask
/// crash`) SIGKILLs this process mid-batch and reopens the directory
/// with `--verify-crash <last acked batch>`.
fn run_crash_workload(engine: &SesqlEngine) -> ! {
    let db = engine.database();
    let kb = engine.knowledge_base();
    if !db.catalog().has_table("crash_log") {
        db.execute("CREATE TABLE crash_log (batch INT, item INT)")
            .unwrap_or_else(|e| die(&format!("crash-workload setup: {e}")));
    }
    // Resume after the highest batch already recovered (re-runs append).
    let start = match db.query("SELECT MAX(batch) AS m FROM crash_log") {
        Ok(rs) => match rs.rows.first().and_then(|r| r.first()) {
            Some(Value::Int(m)) => m + 1,
            _ => 0,
        },
        Err(e) => die(&format!("crash-workload resume: {e}")),
    };
    use std::io::Write as _;
    let mut out = io::stdout();
    for b in start.. {
        let values: Vec<String> = (0..CRASH_ROWS_PER_BATCH)
            .map(|i| format!("({b}, {i})"))
            .collect();
        db.execute(&format!("INSERT INTO crash_log VALUES {}", values.join(", ")))
            .unwrap_or_else(|e| die(&format!("crash-workload insert: {e}")));
        kb.assert_statement(
            "director",
            &Triple::new(
                Term::iri(format!("crash:batch{b}")),
                Term::iri("crash:completed"),
                Term::lit(b.to_string()),
            ),
        )
        .unwrap_or_else(|e| die(&format!("crash-workload assert: {e}")));
        if b == start + 3 {
            // One mid-workload checkpoint so the kill also exercises
            // snapshot + tail recovery, not just log replay.
            engine
                .checkpoint()
                .and_then(|_| engine.checkpoint_join())
                .unwrap_or_else(|e| die(&format!("crash-workload checkpoint: {e}")));
        }
        println!("ack {b}");
        let _ = out.flush();
    }
    unreachable!("crash workload runs until killed")
}

/// `--verify-crash N`: after recovery, check the crash-workload
/// invariants — every batch present in `crash_log` is complete (batch
/// atomicity), every acked batch `0..=N` is present in both substrates
/// (no lost acknowledged writes), and the store took no parked storage
/// error. Exits 0 on success, 2 on a violated invariant.
fn verify_crash_state(engine: &SesqlEngine, acked: u64) -> ! {
    let mut failures: Vec<String> = Vec::new();
    if let Err(e) = engine.storage_check() {
        failures.push(format!("storage check: {e}"));
    }
    let per_batch = engine
        .database()
        .query("SELECT batch, COUNT(*) AS n FROM crash_log GROUP BY batch")
        .unwrap_or_else(|e| die(&format!("verify-crash query: {e}")));
    let mut present = std::collections::HashSet::new();
    for row in &per_batch.rows {
        let (Value::Int(b), Value::Int(n)) = (&row[0], &row[1]) else {
            failures.push(format!("unexpected row shape: {row:?}"));
            continue;
        };
        present.insert(*b);
        if *n != CRASH_ROWS_PER_BATCH {
            failures.push(format!(
                "batch {b} is partial: {n} of {CRASH_ROWS_PER_BATCH} rows (torn batch \
                 replayed)"
            ));
        }
    }
    let kb = engine.knowledge_base();
    for b in 0..=acked as i64 {
        if !present.contains(&b) {
            failures.push(format!("acked batch {b} lost from crash_log"));
        }
        let sparql =
            format!("SELECT ?o WHERE {{ <crash:batch{b}> <crash:completed> ?o }}");
        match kb.query_as("director", &sparql) {
            Ok(sols) if sols.is_empty() => {
                failures.push(format!("acked batch {b} lost from the knowledge base"))
            }
            Ok(_) => {}
            Err(e) => failures.push(format!("acked batch {b} KB query failed: {e}")),
        }
    }
    if failures.is_empty() {
        println!(
            "crash-verify ok: {} acked batches intact, {} batches total",
            acked + 1,
            present.len()
        );
        std::process::exit(0);
    }
    for f in &failures {
        eprintln!("crash-verify FAILED: {f}");
    }
    std::process::exit(2)
}

fn is_tty() -> bool {
    use std::io::IsTerminal;
    io::stdin().is_terminal()
}

/// `--serve`: run the CROSNET1 server until stdin closes, then drain and
/// stop. The bound address goes to stdout first so harnesses that bind
/// `:0` can discover the real port.
fn run_server(engine: SesqlEngine, config: ServerConfig) {
    let mut handle = match Server::start(engine, config) {
        Ok(h) => h,
        Err(e) => die(&format!("--serve failed to bind: {e}")),
    };
    println!("crosse-server listening on {}", handle.addr());
    let _ = io::stdout().flush();
    // Serve until the controlling process closes our stdin (or forever
    // under a detached stdin that stays open). `kill -9` is the chaos
    // harness's ungraceful path.
    let stdin = io::stdin();
    let mut line = String::new();
    loop {
        line.clear();
        match stdin.lock().read_line(&mut line) {
            Ok(0) | Err(_) => break,
            Ok(_) => {}
        }
    }
    eprintln!("crosse-server: draining...");
    handle.shutdown();
    let shed = handle
        .stats()
        .into_iter()
        .find(|(k, _)| k == "shed")
        .map(|(_, v)| v)
        .unwrap_or(0);
    eprintln!("crosse-server: stopped ({shed} queries shed)");
    // Under CROSSE_LOCK_TRACK=1 (debug builds) a serve run doubles as a
    // lock-discipline gate: any acquisition-order inversion or lock held
    // across a blocking region recorded during serving fails the exit.
    let violations = parking_lot::tracking::violations();
    if !violations.is_empty() {
        for v in &violations {
            eprintln!("crosse-server: lock violation: {v}");
        }
        std::process::exit(3);
    }
}

/// `--connect`: the remote shell. Statements end with `;` like the local
/// shell; they travel over the wire as SESQL (a strict SQL superset, and
/// the server routes DDL/DML itself). `.sparql` sends SPARQL. Results
/// stream back as row batches.
fn run_connect_shell(addr: &str, user: &str, deadline_ms: u32) {
    let mut client = match Client::connect(addr) {
        Ok(c) => c,
        Err(e) => die(&format!("--connect {addr}: {e}")),
    };
    let server = match client.hello(user) {
        Ok(s) => s,
        Err(e) => die(&format!("--connect {addr}: {e}")),
    };
    let interactive = is_tty();
    if interactive {
        println!("connected to {server} at {addr} as {user}");
        println!("SESQL statements end with `;`. Type `.help` for commands.");
    }
    let stdin = io::stdin();
    let mut buffer = String::new();
    loop {
        if interactive {
            if buffer.is_empty() {
                print!("crosse:{user}@{addr}> ");
            } else {
                print!("   ...> ");
            }
            let _ = io::stdout().flush();
        }
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break,
            Ok(_) => {}
            Err(e) => die(&format!("stdin: {e}")),
        }
        let trimmed = line.trim();
        if buffer.is_empty() && (trimmed.starts_with('.') || trimmed.starts_with('\\')) {
            if !remote_command(&mut client, trimmed.trim_end_matches(';'), deadline_ms) {
                break;
            }
            continue;
        }
        if trimmed.is_empty() && buffer.is_empty() {
            continue;
        }
        buffer.push_str(&line);
        if trimmed.ends_with(';') {
            let stmt = buffer.trim().trim_end_matches(';').trim().to_string();
            buffer.clear();
            if !stmt.is_empty() {
                run_remote_query(&mut client, Lang::Sesql, &stmt, deadline_ms);
            }
        }
    }
    let _ = client.close();
}

/// Execute one statement over the wire and print the streamed result.
/// `deadline_ms == 0` defers to the server's default deadline.
fn run_remote_query(client: &mut Client, lang: Lang, stmt: &str, deadline_ms: u32) {
    match client.query(lang, stmt, deadline_ms) {
        Ok(result) => {
            if !result.columns.is_empty() {
                println!("{}", result.columns.join(" | "));
            }
            for row in &result.rows {
                let cells: Vec<String> = row.iter().map(fmt_wire_value).collect();
                println!("{}", cells.join(" | "));
            }
            match result.outcome {
                WireOutcome::Done { rows, elapsed_us, .. } => {
                    println!("({rows} row(s) in {:.2} ms)", elapsed_us as f64 / 1e3);
                }
                WireOutcome::Error { code, message } => {
                    println!("error [{code:?}]: {message}");
                }
            }
        }
        Err(e) => die(&format!("connection lost: {e}")),
    }
}

fn fmt_wire_value(v: &Value) -> String {
    match v {
        Value::Null => "NULL".to_string(),
        Value::Str(s) => s.to_string(),
        other => other.to_string(),
    }
}

/// Dot/backslash commands in `--connect` mode. Returns false to exit.
fn remote_command(client: &mut Client, cmd: &str, deadline_ms: u32) -> bool {
    let (head, rest) = match cmd.split_once(char::is_whitespace) {
        Some((h, r)) => (h, r.trim()),
        None => (cmd, ""),
    };
    match head {
        ".quit" | ".exit" => return false,
        ".help" => {
            println!(
                "\
Remote shell (--connect): statements end with `;` and run on the server.
  .sparql QUERY             run a SPARQL query in your session context
  \\explain STMT             show the server's optimized plan
  \\lint STMT                run the server's semantic linter
  \\server-stats             server counters: admissions, sheds, cancels,
                            deadline hits, queue depth, p50/p95 latency
  \\ping                     liveness round-trip
  .quit                      exit"
            );
        }
        ".sparql" => {
            if rest.is_empty() {
                println!("usage: .sparql <query>");
            } else {
                run_remote_query(client, Lang::Sparql, rest, deadline_ms);
            }
        }
        "\\explain" => match client.explain(rest) {
            Ok(Ok(text)) => print!("{text}"),
            Ok(Err(msg)) => println!("explain error: {msg}"),
            Err(e) => die(&format!("connection lost: {e}")),
        },
        "\\lint" => match client.lint(rest) {
            Ok(Ok(text)) if text.is_empty() => println!("(no lint findings)"),
            Ok(Ok(text)) => println!("{text}"),
            Ok(Err(msg)) => println!("error: {msg}"),
            Err(e) => die(&format!("connection lost: {e}")),
        },
        "\\server-stats" => match client.stats() {
            Ok(entries) => {
                for (k, v) in entries {
                    println!("{k:<18} {v}");
                }
            }
            Err(e) => die(&format!("connection lost: {e}")),
        },
        "\\ping" => match client.ping() {
            Ok(()) => println!("pong"),
            Err(e) => die(&format!("connection lost: {e}")),
        },
        other => println!("unknown command `{other}` in --connect mode (try .help)"),
    }
    true
}

impl Shell {
    /// Run a SQL/SESQL statement (already stripped of its terminator).
    /// With `--timing`, the statement goes through the prepare → execute
    /// lifecycle so the two phases are reported separately (and repeated
    /// statements hit the prepared cache).
    fn run_statement(&mut self, stmt: &str) {
        // DDL/DML go straight to the relational engine: they have no
        // enrichment pipeline, and with `--data-dir` they are how a user
        // mutates durable state from the shell.
        let head = stmt
            .split_whitespace()
            .next()
            .map(|w| w.to_ascii_uppercase())
            .unwrap_or_default();
        if matches!(head.as_str(), "CREATE" | "INSERT" | "UPDATE" | "DELETE" | "DROP") {
            match self.platform.engine().database().execute(stmt) {
                Ok(ExecOutcome::Rows(rows)) => print!("{}", rows.to_ascii_table()),
                Ok(ExecOutcome::Affected(n)) => println!("({n} rows affected)"),
                Ok(ExecOutcome::Done) => println!("ok"),
                Err(e) => println!("error: {e}"),
            }
            return;
        }
        if (self.lint || self.deny_warnings) && !self.lint_statement(stmt) {
            return;
        }
        if self.explain {
            self.print_explain(stmt);
        }
        if self.timing {
            let t0 = Instant::now();
            let prepared = match self.platform.engine().prepare(stmt) {
                Ok(p) => p,
                Err(e) => {
                    println!("error: {e}");
                    return;
                }
            };
            let t_prepare = t0.elapsed();
            let t1 = Instant::now();
            match self.platform.query_prepared(&self.user, &prepared, &Params::new()) {
                Ok(EnrichedResult { rows, report }) => {
                    let t_execute = t1.elapsed();
                    print!("{}", rows.to_ascii_table());
                    let stats = self.platform.engine().prepared_cache_stats();
                    println!(
                        "-- prepare {} (cache: {} hits / {} misses) | execute {}",
                        fmt_duration(t_prepare),
                        stats.hits,
                        stats.misses,
                        fmt_duration(t_execute),
                    );
                    // With --timing, how each SPARQL leg was served
                    // (recomputed / cached / shared pairs table) is part
                    // of the picture even without `.report on`.
                    if !self.show_report {
                        self.print_legs(&report);
                    }
                    if self.show_report {
                        self.print_report(&report);
                    }
                }
                Err(e) => println!("error: {e}"),
            }
            return;
        }
        match self.platform.query(&self.user, stmt) {
            Ok(EnrichedResult { rows, report }) => {
                print!("{}", rows.to_ascii_table());
                if self.show_report {
                    self.print_report(&report);
                }
            }
            Err(e) => println!("error: {e}"),
        }
    }

    /// Lint a statement, printing every finding. Returns whether execution
    /// may proceed (false only under `--deny-warnings` with warning-or-
    /// worse findings).
    fn lint_statement(&mut self, stmt: &str) -> bool {
        use crosse::core::Severity;
        let diags = match self.platform.engine().lint(&self.user, stmt) {
            Ok(d) => d,
            // A statement the linter cannot parse will fail identically at
            // execution, which reports the error in context.
            Err(_) => return true,
        };
        for d in &diags {
            println!("-- lint: {d}");
        }
        if self.deny_warnings && diags.iter().any(|d| d.severity >= Severity::Warning) {
            println!(
                "error: statement refused under --deny-warnings ({} lint finding(s))",
                diags.len()
            );
            self.lint_failed = true;
            return false;
        }
        true
    }

    /// Print the optimized plan of a statement (SESQL superset — covers
    /// plain SQL too): the `EXPLAIN` tree with rewrite-pass annotations,
    /// shared spools included.
    fn print_explain(&self, stmt: &str) {
        match self.platform.engine().explain(&self.user, stmt) {
            Ok(text) => print!("{text}"),
            Err(e) => println!("explain error: {e}"),
        }
    }

    fn print_report(&self, report: &crosse::core::sqm::PipelineReport) {
        println!(
            "-- parse {:?} | sql {:?} | sparql {:?} | join {:?} | final {:?} | total {:?}",
            report.parse,
            report.sql_exec,
            report.sparql_exec,
            report.join,
            report.final_sql,
            report.total()
        );
        self.print_legs(report);
    }

    /// One line per SPARQL leg, tagging how it was served: `shared` =
    /// the persistent REPLACEVARIABLE pairs table (the spooled relational
    /// leg); `cached` alone = SPARQL solution-cache hit; no tag =
    /// recomputed.
    fn print_legs(&self, report: &crosse::core::sqm::PipelineReport) {
        for run in &report.sparql_runs {
            let origin = match (run.shared, run.cached) {
                (true, _) => ", shared",
                (false, true) => ", cached",
                (false, false) => "",
            };
            println!(
                "--   leg [{}{origin}] {} solution(s): {}",
                run.purpose,
                run.solutions,
                run.sparql.replace('\n', " ")
            );
        }
    }

    /// Split a `\exec` argument string into whitespace-separated tokens,
    /// honouring single-quoted spans: a quoted span may contain spaces,
    /// `=`, `$` and doubled `''` quote escapes, and may appear anywhere in
    /// a token (`$city='Basse di Stura'` is one token). Quotes are kept
    /// verbatim — [`Shell::parse_value`] unwraps them — so quoted numerics
    /// still bind as strings. Errors on an unterminated quote.
    fn split_exec_args(rest: &str) -> std::result::Result<Vec<String>, String> {
        let mut out = Vec::new();
        let mut cur = String::new();
        let mut in_quote = false;
        for c in rest.chars() {
            match c {
                '\'' => {
                    in_quote = !in_quote;
                    cur.push(c);
                }
                c if c.is_whitespace() && !in_quote => {
                    if !cur.is_empty() {
                        out.push(std::mem::take(&mut cur));
                    }
                }
                c => cur.push(c),
            }
        }
        if in_quote {
            return Err(format!("unterminated quoted string in `{rest}`"));
        }
        if !cur.is_empty() {
            out.push(cur);
        }
        Ok(out)
    }

    /// Parse a `\exec` argument value: quoted string, integer, float,
    /// boolean, NULL, or bare string.
    fn parse_value(text: &str) -> Value {
        let t = text.trim();
        if let Some(stripped) = t.strip_prefix('\'') {
            // Strip exactly one closing quote, then undo `''` escapes —
            // `'abc'''` binds `abc'`.
            let inner = stripped.strip_suffix('\'').unwrap_or(stripped);
            return Value::from(inner.replace("''", "'"));
        }
        if t.eq_ignore_ascii_case("null") {
            return Value::Null;
        }
        if t.eq_ignore_ascii_case("true") {
            return Value::Bool(true);
        }
        if t.eq_ignore_ascii_case("false") {
            return Value::Bool(false);
        }
        if let Ok(i) = t.parse::<i64>() {
            return Value::Int(i);
        }
        if let Ok(f) = t.parse::<f64>() {
            return Value::Float(f);
        }
        Value::from(t)
    }

    /// Handle a backslash meta-command (`\prepare`, `\exec`, `\prepared`).
    fn meta_command(&mut self, cmd: &str) {
        let (head, rest) = match cmd.split_once(char::is_whitespace) {
            Some((h, r)) => (h, r.trim()),
            None => (cmd, ""),
        };
        match head {
            "\\prepare" => {
                let Some((name, query)) = rest.split_once(char::is_whitespace) else {
                    println!("usage: \\prepare <name> <query>");
                    return;
                };
                let t0 = Instant::now();
                match self.platform.engine().prepare(query.trim()) {
                    Ok(p) => {
                        let elapsed = t0.elapsed();
                        let slots: Vec<String> =
                            p.param_slots().iter().map(|s| s.display()).collect();
                        println!(
                            "prepared `{name}` in {} ({} parameter(s){}{})",
                            fmt_duration(elapsed),
                            slots.len(),
                            if slots.is_empty() { "" } else { ": " },
                            slots.join(", "),
                        );
                        self.prepared.insert(name.to_string(), p);
                    }
                    Err(e) => println!("error: {e}"),
                }
            }
            "\\exec" => {
                let tokens = match Self::split_exec_args(rest) {
                    Ok(t) => t,
                    Err(e) => {
                        println!("error: {e}");
                        return;
                    }
                };
                let mut parts = tokens.into_iter();
                let Some(name) = parts.next() else {
                    println!("usage: \\exec <name> [$k=v ...] [v ...]   (quote values with spaces: $k='a b')");
                    return;
                };
                let Some(prepared) = self.prepared.get(&name).cloned() else {
                    println!("no prepared statement `{name}` (see \\prepare)");
                    return;
                };
                let mut params = Params::new();
                for arg in parts {
                    if let Some(named) = arg.strip_prefix('$') {
                        let Some((k, v)) = named.split_once('=') else {
                            println!("bad binding `{arg}` (expected $name=value)");
                            return;
                        };
                        params = params.set(k, Self::parse_value(v));
                    } else {
                        params = params.push(Self::parse_value(&arg));
                    }
                }
                let t0 = Instant::now();
                match self.platform.query_prepared(&self.user, &prepared, &params) {
                    Ok(EnrichedResult { rows, report }) => {
                        let t_execute = t0.elapsed();
                        print!("{}", rows.to_ascii_table());
                        if self.timing {
                            println!(
                                "-- prepare (cached handle) | execute {}",
                                fmt_duration(t_execute)
                            );
                        }
                        if self.show_report {
                            self.print_report(&report);
                        }
                    }
                    Err(e) => println!("error: {e}"),
                }
            }
            "\\lint" => {
                if rest.is_empty() {
                    println!("usage: \\lint <statement>   (or \\lint <prepared-name>)");
                    return;
                }
                let stmt = match self.prepared.get(rest) {
                    Some(p) => p.text().to_string(),
                    None => rest.trim_end_matches(';').to_string(),
                };
                match self.platform.engine().lint(&self.user, &stmt) {
                    Ok(diags) if diags.is_empty() => println!("(no lint findings)"),
                    Ok(diags) => {
                        for d in &diags {
                            println!("{d}");
                        }
                    }
                    Err(e) => println!("error: {e}"),
                }
            }
            "\\explain" => {
                if rest.is_empty() {
                    println!("usage: \\explain <statement>   (or \\explain <prepared-name>)");
                    return;
                }
                // A bare prepared-statement name explains its compiled
                // text; anything else is explained as statement text.
                let stmt = match self.prepared.get(rest) {
                    Some(p) => p.text().to_string(),
                    None => rest.trim_end_matches(';').to_string(),
                };
                self.print_explain(&stmt);
            }
            "\\checkpoint" => {
                let engine = self.platform.engine();
                match engine.checkpoint().and_then(|lsn| {
                    engine.checkpoint_join()?;
                    Ok(lsn)
                }) {
                    Ok(lsn) => println!("checkpoint written at LSN {lsn}"),
                    Err(e) => println!("error: {e}"),
                }
            }
            "\\wal-stats" => match self.platform.engine().wal_stats() {
                Some(s) => {
                    let age = s
                        .last_checkpoint_age
                        .map(|d| format!("{:.1} s ago", d.as_secs_f64()))
                        .unwrap_or_else(|| "never".to_string());
                    println!("last LSN:        {}", s.last_lsn);
                    println!("snapshot LSN:    {}", s.snapshot_lsn);
                    println!("log bytes:       {}", s.log_bytes);
                    println!("last checkpoint: {age}");
                    println!("sync policy:     {}", s.sync_policy);
                }
                None => {
                    println!("in-memory engine (start with --data-dir to enable the WAL)")
                }
            },
            "\\lock-stats" => {
                let stats = self.platform.engine().lock_stats();
                if stats.is_empty() {
                    println!(
                        "no lock tracking data (needs a debug build with \
                         CROSSE_LOCK_TRACK=1; the layer compiles out of release)"
                    );
                    return;
                }
                println!(
                    "{:<24} {:>12} {:>10} {:>12} {:>12}",
                    "site", "acquisitions", "contended", "total hold", "max hold"
                );
                for s in stats {
                    println!(
                        "{:<24} {:>12} {:>10} {:>10.3}ms {:>10.3}ms",
                        s.site,
                        s.acquisitions,
                        s.contended,
                        s.total_hold_ns as f64 / 1e6,
                        s.max_hold_ns as f64 / 1e6,
                    );
                }
            }
            "\\prepared" => {
                if self.prepared.is_empty() {
                    println!("(no prepared statements)");
                }
                let mut names: Vec<&String> = self.prepared.keys().collect();
                names.sort();
                for n in names {
                    let p = &self.prepared[n];
                    let slots: Vec<String> =
                        p.param_slots().iter().map(|s| s.display()).collect();
                    println!("{n}({}) — {}", slots.join(", "), p.text());
                }
            }
            other => println!("unknown meta-command `{other}` (try .help)"),
        }
    }

    /// Handle a dot-command; returns false to exit the shell.
    fn dot_command(&mut self, cmd: &str) -> bool {
        let (head, rest) = match cmd.split_once(char::is_whitespace) {
            Some((h, r)) => (h, r.trim()),
            None => (cmd, ""),
        };
        match head {
            ".quit" | ".exit" => return false,
            ".help" => self.help(),
            ".user" => {
                if rest.is_empty() {
                    println!("current user: {}", self.user);
                } else {
                    let kb = self.platform.knowledge_base();
                    if !kb.is_registered(rest) {
                        match self.platform.register_user(rest) {
                            Ok(()) => println!("registered new user `{rest}`"),
                            Err(e) => {
                                println!("error: {e}");
                                return true;
                            }
                        }
                    }
                    self.user = rest.to_string();
                }
            }
            ".users" => {
                for u in self.platform.users() {
                    println!("{u}");
                }
            }
            ".tables" => {
                for t in self.platform.database().catalog().table_names() {
                    println!("{t}");
                }
            }
            ".schema" => match self.platform.database().catalog().get_table(rest) {
                Ok(t) => {
                    for c in &t.schema.columns {
                        println!("{} {}", c.name, c.data_type);
                    }
                }
                Err(e) => println!("error: {e}"),
            },
            ".sparql" => {
                let kb = self.platform.knowledge_base();
                let graphs = kb.context_graphs(&self.user);
                let refs: Vec<&str> = graphs.iter().map(String::as_str).collect();
                match query_any(kb.store(), &refs, rest) {
                    Ok(QueryOutcome::Solutions(sols)) => {
                        println!("?{}", sols.variables.join(" ?"));
                        for row in &sols.rows {
                            let cells: Vec<String> = row
                                .iter()
                                .map(|t| match t {
                                    Some(term) => term.to_string(),
                                    None => "UNDEF".to_string(),
                                })
                                .collect();
                            println!("{}", cells.join(" | "));
                        }
                        println!("({} solution(s))", sols.len());
                    }
                    Ok(QueryOutcome::Boolean(b)) => println!("{b}"),
                    Ok(QueryOutcome::Graph(ts)) => {
                        for t in &ts {
                            println!("{} {} {} .", t.subject, t.predicate, t.object);
                        }
                        println!("({} triple(s))", ts.len());
                    }
                    Err(e) => println!("error: {e}"),
                }
            }
            ".assert" => {
                let parts: Vec<&str> = rest.split_whitespace().collect();
                if parts.len() != 3 {
                    println!("usage: .assert <subject> <property> <object>");
                    return true;
                }
                let object = if parts[2].chars().next().is_some_and(|c| c.is_ascii_digit())
                    || parts[2].starts_with('"')
                {
                    Term::lit(parts[2].trim_matches('"'))
                } else {
                    Term::iri(parts[2])
                };
                match self.platform.independent_annotation(
                    &self.user,
                    Term::iri(parts[0]),
                    Term::iri(parts[1]),
                    object,
                ) {
                    Ok(id) => println!("asserted statement #{}", id.0),
                    Err(e) => println!("error: {e}"),
                }
            }
            ".kb" => {
                let kb = self.platform.knowledge_base();
                for id in kb.statements_by(&self.user) {
                    match kb.statement_triple(id) {
                        Ok(t) => println!("#{}: {} {} {}", id.0, t.subject, t.predicate, t.object),
                        Err(e) => println!("#{}: <error: {e}>", id.0),
                    }
                }
            }
            ".browse" => {
                for info in self.platform.browse_peer_statements(&self.user) {
                    println!(
                        "#{}: {} {} {} (by {})",
                        info.id.0,
                        info.triple.subject,
                        info.triple.predicate,
                        info.triple.object,
                        info.author
                    );
                }
            }
            ".import" => match rest.parse::<u64>() {
                Ok(raw) => {
                    match self.platform.import_statement(
                        &self.user,
                        crosse::rdf::provenance::StatementId(raw),
                    ) {
                        Ok(()) => println!("imported statement #{raw}"),
                        Err(e) => println!("error: {e}"),
                    }
                }
                Err(_) => println!("usage: .import <statement-id>"),
            },
            ".stored" => match rest.split_once(char::is_whitespace) {
                Some((name, sparql)) => {
                    match self.platform.engine().stored_queries().register(name, sparql.trim())
                    {
                        Ok(()) => println!("registered stored query `{name}`"),
                        Err(e) => println!("error: {e}"),
                    }
                }
                None => println!("usage: .stored <name> <sparql>"),
            },
            ".explain" => {
                let stmt = rest.trim_end_matches(';');
                match self.platform.engine().explain(&self.user, stmt) {
                    Ok(text) => print!("{text}"),
                    Err(e) => println!("error: {e}"),
                }
            }
            ".report" => match rest {
                "on" => {
                    self.show_report = true;
                    println!("pipeline report on");
                }
                "off" => {
                    self.show_report = false;
                    println!("pipeline report off");
                }
                _ => println!("usage: .report on|off"),
            },
            other => println!("unknown command `{other}` (try .help)"),
        }
        true
    }

    fn help(&self) {
        println!(
            "\
SQL/SESQL statements end with `;` and may span lines.
Meta-commands (one line; `$name` / `?` placeholders bind at \\exec time):
  \\prepare NAME QUERY       compile a SESQL query once under a name
  \\exec NAME [$k=v | v]...  execute it with named/positional bindings
                            (single-quote values with spaces/=/$: $k='a b',
                             '' escapes a quote inside a quoted value)
  \\explain STMT|NAME        show the optimized plan (pass annotations,
                            shared spools) for a statement or a prepared name
  \\lint STMT|NAME           run the semantic linter on a statement or a
                            prepared name and list its findings
  \\prepared                 list prepared statements
  \\checkpoint               write a snapshot and truncate the WAL (--data-dir)
  \\wal-stats                show WAL state: LSNs, log bytes, checkpoint age
  \\lock-stats               per-site lock acquisition/contention/hold-time
                            counters (debug builds with CROSSE_LOCK_TRACK=1)
Dot-commands:
  .help                      this text
  .user [NAME]               show or switch the active user (registers new users)
  .users                     list registered users
  .tables                    list databank tables
  .schema TABLE              show a table's columns
  .sparql QUERY              run SPARQL against the active user's context
  .assert S P O              add an RDF statement to the active user's KB
  .kb                        list the active user's statements
  .browse                    browse peers' public statements
  .import ID                 accept a peer statement as your own
  .stored NAME QUERY         register a stored SPARQL query (for REPLACECONSTANT)
  .explain SESQL             show the pipeline plan without executing
  .report on|off             print per-stage pipeline timings after each query
  .quit                      exit"
        );
    }
}
