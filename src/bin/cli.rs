//! Interactive CroSSE shell: a SESQL REPL over a generated SmartGround
//! databank with per-user knowledge bases.
//!
//! ```text
//! cargo run --bin crosse-cli                # default databank (50 landfills)
//! cargo run --bin crosse-cli -- --landfills 200 --seed 7
//! echo "SELECT name, city FROM landfill LIMIT 3;" | cargo run --bin crosse-cli
//! ```
//!
//! SQL/SESQL statements end with `;` and may span lines; everything else is
//! a dot-command (`.help` lists them).

use std::io::{self, BufRead, Write};

use crosse::core::platform::CrossePlatform;
use crosse::core::sqm::EnrichedResult;
use crosse::rdf::sparql::eval::{query_any, QueryOutcome};
use crosse::rdf::term::Term;
use crosse::smartground::{standard_engine, SmartGroundConfig};

struct Shell {
    platform: CrossePlatform,
    user: String,
    show_report: bool,
}

fn main() {
    let mut landfills = 50usize;
    let mut seed = 42u64;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--landfills" => {
                landfills = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--landfills needs a number"));
            }
            "--seed" => {
                seed = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--seed needs a number"));
            }
            "--help" | "-h" => {
                println!("crosse-cli [--landfills N] [--seed N]");
                return;
            }
            other => die(&format!("unknown argument `{other}` (try --help)")),
        }
    }

    let config = SmartGroundConfig::default()
        .with_landfills(landfills)
        .with_seed(seed);
    let engine = standard_engine(&config, "director").unwrap_or_else(|e| {
        die(&format!("failed to build the databank: {e}"));
    });
    let platform = CrossePlatform::from_engine(engine);
    let mut shell = Shell {
        platform,
        user: "director".to_string(),
        show_report: false,
    };

    let interactive = is_tty();
    if interactive {
        println!(
            "CroSSE shell — SmartGround databank with {landfills} landfills (seed {seed})."
        );
        println!("SESQL statements end with `;`. Type `.help` for commands.");
    }

    let stdin = io::stdin();
    let mut buffer = String::new();
    loop {
        if interactive {
            if buffer.is_empty() {
                print!("crosse:{}> ", shell.user);
            } else {
                print!("   ...> ");
            }
            let _ = io::stdout().flush();
        }
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break, // EOF
            Ok(_) => {}
            Err(e) => die(&format!("stdin: {e}")),
        }
        let trimmed = line.trim();
        if buffer.is_empty() && trimmed.starts_with('.') {
            if !shell.dot_command(trimmed) {
                break;
            }
            continue;
        }
        if trimmed.is_empty() && buffer.is_empty() {
            continue;
        }
        buffer.push_str(&line);
        if trimmed.ends_with(';') {
            let stmt = buffer.trim().trim_end_matches(';').trim().to_string();
            buffer.clear();
            if !stmt.is_empty() {
                shell.run_statement(&stmt);
            }
        }
    }
}

fn die(msg: &str) -> ! {
    eprintln!("crosse-cli: {msg}");
    std::process::exit(1)
}

fn is_tty() -> bool {
    use std::io::IsTerminal;
    io::stdin().is_terminal()
}

impl Shell {
    /// Run a SQL/SESQL statement (already stripped of its terminator).
    fn run_statement(&mut self, stmt: &str) {
        match self.platform.query(&self.user, stmt) {
            Ok(EnrichedResult { rows, report }) => {
                print!("{}", rows.to_ascii_table());
                if self.show_report {
                    println!(
                        "-- parse {:?} | sql {:?} | sparql {:?} | join {:?} | final {:?} | total {:?}",
                        report.parse,
                        report.sql_exec,
                        report.sparql_exec,
                        report.join,
                        report.final_sql,
                        report.total()
                    );
                    for run in &report.sparql_runs {
                        println!(
                            "--   leg [{}{}] {} solution(s): {}",
                            run.purpose,
                            if run.cached { ", cached" } else { "" },
                            run.solutions,
                            run.sparql.replace('\n', " ")
                        );
                    }
                }
            }
            Err(e) => println!("error: {e}"),
        }
    }

    /// Handle a dot-command; returns false to exit the shell.
    fn dot_command(&mut self, cmd: &str) -> bool {
        let (head, rest) = match cmd.split_once(char::is_whitespace) {
            Some((h, r)) => (h, r.trim()),
            None => (cmd, ""),
        };
        match head {
            ".quit" | ".exit" => return false,
            ".help" => self.help(),
            ".user" => {
                if rest.is_empty() {
                    println!("current user: {}", self.user);
                } else {
                    let kb = self.platform.knowledge_base();
                    if !kb.is_registered(rest) {
                        match self.platform.register_user(rest) {
                            Ok(()) => println!("registered new user `{rest}`"),
                            Err(e) => {
                                println!("error: {e}");
                                return true;
                            }
                        }
                    }
                    self.user = rest.to_string();
                }
            }
            ".users" => {
                for u in self.platform.users() {
                    println!("{u}");
                }
            }
            ".tables" => {
                for t in self.platform.database().catalog().table_names() {
                    println!("{t}");
                }
            }
            ".schema" => match self.platform.database().catalog().get_table(rest) {
                Ok(t) => {
                    for c in &t.schema.columns {
                        println!("{} {}", c.name, c.data_type);
                    }
                }
                Err(e) => println!("error: {e}"),
            },
            ".sparql" => {
                let kb = self.platform.knowledge_base();
                let graphs = kb.context_graphs(&self.user);
                let refs: Vec<&str> = graphs.iter().map(String::as_str).collect();
                match query_any(kb.store(), &refs, rest) {
                    Ok(QueryOutcome::Solutions(sols)) => {
                        println!("?{}", sols.variables.join(" ?"));
                        for row in &sols.rows {
                            let cells: Vec<String> = row
                                .iter()
                                .map(|t| match t {
                                    Some(term) => term.to_string(),
                                    None => "UNDEF".to_string(),
                                })
                                .collect();
                            println!("{}", cells.join(" | "));
                        }
                        println!("({} solution(s))", sols.len());
                    }
                    Ok(QueryOutcome::Boolean(b)) => println!("{b}"),
                    Ok(QueryOutcome::Graph(ts)) => {
                        for t in &ts {
                            println!("{} {} {} .", t.subject, t.predicate, t.object);
                        }
                        println!("({} triple(s))", ts.len());
                    }
                    Err(e) => println!("error: {e}"),
                }
            }
            ".assert" => {
                let parts: Vec<&str> = rest.split_whitespace().collect();
                if parts.len() != 3 {
                    println!("usage: .assert <subject> <property> <object>");
                    return true;
                }
                let object = if parts[2].chars().next().is_some_and(|c| c.is_ascii_digit())
                    || parts[2].starts_with('"')
                {
                    Term::lit(parts[2].trim_matches('"'))
                } else {
                    Term::iri(parts[2])
                };
                match self.platform.independent_annotation(
                    &self.user,
                    Term::iri(parts[0]),
                    Term::iri(parts[1]),
                    object,
                ) {
                    Ok(id) => println!("asserted statement #{}", id.0),
                    Err(e) => println!("error: {e}"),
                }
            }
            ".kb" => {
                let kb = self.platform.knowledge_base();
                for id in kb.statements_by(&self.user) {
                    match kb.statement_triple(id) {
                        Ok(t) => println!("#{}: {} {} {}", id.0, t.subject, t.predicate, t.object),
                        Err(e) => println!("#{}: <error: {e}>", id.0),
                    }
                }
            }
            ".browse" => {
                for info in self.platform.browse_peer_statements(&self.user) {
                    println!(
                        "#{}: {} {} {} (by {})",
                        info.id.0,
                        info.triple.subject,
                        info.triple.predicate,
                        info.triple.object,
                        info.author
                    );
                }
            }
            ".import" => match rest.parse::<u64>() {
                Ok(raw) => {
                    match self.platform.import_statement(
                        &self.user,
                        crosse::rdf::provenance::StatementId(raw),
                    ) {
                        Ok(()) => println!("imported statement #{raw}"),
                        Err(e) => println!("error: {e}"),
                    }
                }
                Err(_) => println!("usage: .import <statement-id>"),
            },
            ".stored" => match rest.split_once(char::is_whitespace) {
                Some((name, sparql)) => {
                    match self.platform.engine().stored_queries().register(name, sparql.trim())
                    {
                        Ok(()) => println!("registered stored query `{name}`"),
                        Err(e) => println!("error: {e}"),
                    }
                }
                None => println!("usage: .stored <name> <sparql>"),
            },
            ".explain" => {
                let stmt = rest.trim_end_matches(';');
                match self.platform.engine().explain(&self.user, stmt) {
                    Ok(text) => print!("{text}"),
                    Err(e) => println!("error: {e}"),
                }
            }
            ".report" => match rest {
                "on" => {
                    self.show_report = true;
                    println!("pipeline report on");
                }
                "off" => {
                    self.show_report = false;
                    println!("pipeline report off");
                }
                _ => println!("usage: .report on|off"),
            },
            other => println!("unknown command `{other}` (try .help)"),
        }
        true
    }

    fn help(&self) {
        println!(
            "\
SQL/SESQL statements end with `;` and may span lines.
Dot-commands:
  .help                      this text
  .user [NAME]               show or switch the active user (registers new users)
  .users                     list registered users
  .tables                    list databank tables
  .schema TABLE              show a table's columns
  .sparql QUERY              run SPARQL against the active user's context
  .assert S P O              add an RDF statement to the active user's KB
  .kb                        list the active user's statements
  .browse                    browse peers' public statements
  .import ID                 accept a peer statement as your own
  .stored NAME QUERY         register a stored SPARQL query (for REPLACECONSTANT)
  .explain SESQL             show the pipeline plan without executing
  .report on|off             print per-stage pipeline timings after each query
  .quit                      exit"
        );
    }
}
