//! # CroSSE — CrowdSourced Semantic Enrichment
//!
//! A from-scratch Rust reproduction of *Contextually-Enriched Querying of
//! Integrated Data Sources* (Cavallo, Di Mauro, Pasteris, Sapino, Candan —
//! ICDE 2018): the **SESQL** contextually-enriched query language and the
//! full CroSSE platform around it.
//!
//! This facade crate re-exports the workspace:
//!
//! | module | crate | role |
//! |---|---|---|
//! | [`relational`] | `crosse-relational` | in-memory SQL engine (the "main platform") |
//! | [`rdf`] | `crosse-rdf` | triple store + SPARQL + RDFS (the "semantic platform") |
//! | [`federation`] | `crosse-federation` | postgres_fdw simulation, JoinManager, temp DB |
//! | [`core`] | `crosse-core` | SESQL language + Semantic Query Module + platform services |
//! | [`server`] | `crosse-server` | CROSNET1 TCP front-end: wire protocol, admission control, deadlines |
//! | [`smartground`] | `crosse-smartground` | use-case schema, data generators, workloads |
//!
//! ## Quickstart
//!
//! ```
//! use crosse::prelude::*;
//!
//! // A databank + a user with contextual knowledge.
//! let engine = crosse::smartground::standard_engine(
//!     &SmartGroundConfig::tiny(), "director").unwrap();
//!
//! // Paper Example 4.1: extend the result with the user's dangerLevel
//! // knowledge.
//! let result = engine.execute(
//!     "director",
//!     "SELECT elem_name, landfill_name FROM elem_contained \
//!      WHERE landfill_name = 'LF00000' \
//!      ENRICH SCHEMAEXTENSION(elem_name, dangerLevel)",
//! ).unwrap();
//! assert_eq!(result.rows.schema.columns.last().unwrap().name, "dangerLevel");
//! ```

#![forbid(unsafe_code)]

pub use crosse_core as core;
pub use crosse_exec as exec;
pub use crosse_federation as federation;
pub use crosse_rdf as rdf;
pub use crosse_relational as relational;
pub use crosse_server as server;
pub use crosse_smartground as smartground;

/// The most common imports in one place.
pub mod prelude {
    pub use crosse_core::platform::CrossePlatform;
    pub use crosse_core::session::{Rows, Session};
    pub use crosse_core::sqm::{EnrichOptions, MultiValuePolicy, PreparedSesql, SesqlEngine};
    pub use crosse_core::{parse_sesql, Enrichment, SesqlQuery};
    pub use crosse_federation::{FederatedDatabase, LatencyModel, LocalSource, RemoteSource};
    pub use crosse_rdf::provenance::KnowledgeBase;
    pub use crosse_rdf::sparql::SparqlParams;
    pub use crosse_rdf::store::Triple;
    pub use crosse_rdf::term::Term;
    pub use crosse_core::{Diagnostic, Severity};
    pub use crosse_relational::{Database, Params, RowSet, Value};
    pub use crosse_smartground::{SmartGroundConfig, standard_engine, standard_engine_at, standard_engine_at_with};
}
